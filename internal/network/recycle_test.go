package network

// Tests for the network's message/task recycling: delivery timing and
// ordering must be bit-identical with recycling on or off, reclamation must
// never touch a message before its last handler returns, and in-flight
// traffic must survive a mid-flight Channel.Reset (the channel only
// accounts bandwidth; it owns no message state).

import (
	"testing"

	"repro/internal/sim"
)

// capture records delivery observations BY VALUE — under Config.Recycle a
// handler must not retain *Message past the Deliver call.
type capture struct {
	kernel *sim.Kernel
	events []capturedDelivery
}

type capturedDelivery struct {
	at      sim.Time
	ordered bool
	seq     uint64
	from    NodeID
	payload any
}

func (c *capture) DeliverOrdered(m *Message) {
	c.events = append(c.events, capturedDelivery{c.kernel.Now(), true, m.Seq, m.From, m.Payload})
}

func (c *capture) DeliverUnordered(m *Message) {
	c.events = append(c.events, capturedDelivery{c.kernel.Now(), false, 0, m.From, m.Payload})
}

// drive runs a fixed mixed workload — jittered ordered multicasts and
// unordered unicasts from several senders — and returns every node's
// captured delivery stream.
func drive(recycle bool) [][]capturedDelivery {
	const nodes = 5
	k := sim.NewKernel()
	n := New(k, Config{
		Nodes:        nodes,
		BandwidthMBs: 800,
		JitterNs:     137,
		JitterSeed:   42,
		Recycle:      recycle,
	})
	caps := make([]*capture, nodes)
	for i := range caps {
		caps[i] = &capture{kernel: k}
		n.SetHandler(NodeID(i), caps[i])
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 300; i++ {
		src := NodeID(rng.Intn(nodes))
		id := i
		delay := sim.Time(rng.Intn(900))
		if i%3 == 0 {
			dst := NodeID(rng.Intn(nodes))
			k.Schedule(delay, func() { n.SendUnordered(src, dst, 72, id) })
		} else {
			k.Schedule(delay, func() { n.SendOrdered(src, n.FullMask(), 8, id) })
		}
	}
	k.Drain()
	out := make([][]capturedDelivery, nodes)
	for i, c := range caps {
		out[i] = c.events
	}
	return out
}

// TestRecycleDeliveryDeterminism: the same traffic produces bit-identical
// delivery streams (times, sequence numbers, payloads, at every node) with
// message recycling on and off — recycling changes allocation behaviour
// only, never timing or order.
func TestRecycleDeliveryDeterminism(t *testing.T) {
	off := drive(false)
	on := drive(true)
	for node := range off {
		if len(off[node]) != len(on[node]) {
			t.Fatalf("node %d: %d deliveries recycled vs %d fresh", node, len(on[node]), len(off[node]))
		}
		for i := range off[node] {
			if off[node][i] != on[node][i] {
				t.Fatalf("node %d delivery %d differs:\n fresh:    %+v\n recycled: %+v",
					node, i, off[node][i], on[node][i])
			}
		}
	}
}

// TestRecycledMessagesReclaimed: with recycling on, a steady stream reuses
// Message records instead of allocating one per delivery.
func TestRecycledMessagesReclaimed(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Config{Nodes: 2, BandwidthMBs: 100000, Recycle: true})
	for i := 0; i < 2; i++ {
		n.SetHandler(NodeID(i), &capture{kernel: k})
	}
	// Warm: one round trip materializes the free lists.
	n.SendOrdered(0, n.FullMask(), 8, nil)
	n.SendUnordered(0, 1, 72, nil)
	k.Drain()
	allocs := testing.AllocsPerRun(10, func() {
		n.SendOrdered(0, n.FullMask(), 8, nil)
		n.SendUnordered(0, 1, 72, nil)
		k.Drain()
	})
	if allocs != 0 {
		t.Errorf("warmed network allocates %.1f per send+deliver round, want 0", allocs)
	}
}

// TestInFlightSurvivesChannelReset: resetting the endpoint channels while
// messages are in flight must not corrupt or lose them — channels account
// bandwidth, the kernel owns the deliveries. (The simulation resets
// channels only between runs; this pins the seam anyway.)
func TestInFlightSurvivesChannelReset(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, Config{Nodes: 3, BandwidthMBs: 1600, Recycle: true})
	caps := make([]*capture, 3)
	for i := range caps {
		caps[i] = &capture{kernel: k}
		n.SetHandler(NodeID(i), caps[i])
	}
	n.SendOrdered(0, n.FullMask(), 8, "ordered-payload")
	n.SendUnordered(1, 2, 72, "unordered-payload")
	// Reset every channel while both messages are still in flight.
	k.Schedule(10, func() {
		for i := 0; i < 3; i++ {
			n.InChannel(NodeID(i)).Reset(1600)
			n.OutChannel(NodeID(i)).Reset(1600)
		}
	})
	k.Drain()
	for i, c := range caps {
		var ordered, unordered int
		for _, e := range c.events {
			if e.ordered {
				ordered++
				if e.payload != "ordered-payload" {
					t.Errorf("node %d: ordered payload corrupted: %v", i, e.payload)
				}
			} else {
				unordered++
				if e.payload != "unordered-payload" {
					t.Errorf("node %d: unordered payload corrupted: %v", i, e.payload)
				}
			}
		}
		if ordered != 1 {
			t.Errorf("node %d got %d ordered deliveries, want 1", i, ordered)
		}
		if i == 2 && unordered != 1 {
			t.Errorf("node 2 got %d unordered deliveries, want 1", unordered)
		}
	}
}
