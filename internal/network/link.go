package network

import "repro/internal/sim"

// Channel models one direction of a node's endpoint link: a FIFO resource
// with bandwidth-limited occupancy. A message seizes the channel for
// size/bandwidth nanoseconds; propagation is virtual cut-through, so
// occupancy creates queueing and utilization but does not itself add to the
// uncontended latency (matching the paper's fixed 50 ns traversal plus
// endpoint contention model).
//
// Internal accounting is in float64 nanoseconds so that sub-nanosecond
// occupancies at very high bandwidths (e.g. 8 bytes at 10 GB/s = 0.8 ns)
// accumulate without rounding bias.
type Channel struct {
	nsPerByte float64
	freeAt    float64
	busy      float64 // cumulative occupied ns
	messages  uint64
	bytes     uint64
}

// NewChannel returns a channel with the given bandwidth in MB/s.
func NewChannel(bandwidthMBs float64) *Channel {
	if bandwidthMBs <= 0 {
		panic("network: bandwidth must be positive")
	}
	// size bytes / (MB/s * 1e6 B/s) seconds = size * 1000 / MBs nanoseconds.
	return &Channel{nsPerByte: 1000.0 / bandwidthMBs}
}

// Reset returns the channel to its freshly constructed state with a possibly
// different bandwidth, so a reused interconnect replays exactly like a fresh
// one. Samplers holding a pointer to the channel (adaptive units) stay valid.
func (c *Channel) Reset(bandwidthMBs float64) {
	if bandwidthMBs <= 0 {
		panic("network: bandwidth must be positive")
	}
	c.nsPerByte = 1000.0 / bandwidthMBs
	c.freeAt = 0
	c.busy = 0
	c.messages = 0
	c.bytes = 0
}

// Seize reserves the channel for a message of the given size (scaled by
// costMult) arriving at time now, and returns the time at which the message
// wins the channel. Messages are served in seize-call order (FIFO).
func (c *Channel) Seize(now sim.Time, sizeBytes int, costMult float64) sim.Time {
	start := float64(now)
	if c.freeAt > start {
		start = c.freeAt
	}
	svc := float64(sizeBytes) * c.nsPerByte * costMult
	c.freeAt = start + svc
	c.busy += svc
	c.messages++
	c.bytes += uint64(float64(sizeBytes) * costMult)
	// Round the grant up so downstream events land on whole nanoseconds.
	t := sim.Time(start)
	if float64(t) < start {
		t++
	}
	return t
}

// BusyNs returns the cumulative occupied time in nanoseconds.
func (c *Channel) BusyNs() float64 { return c.busy }

// Messages returns the number of messages that have crossed the channel.
func (c *Channel) Messages() uint64 { return c.messages }

// Bytes returns the cumulative bytes (after cost scaling) carried.
func (c *Channel) Bytes() uint64 { return c.bytes }

// Utilization returns busy/elapsed for the given elapsed time, clamped to 1.
func (c *Channel) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := c.busy / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
