package network

import (
	"fmt"
	"math/bits"
	"strings"
)

// NodeID identifies an integrated processor/memory node.
type NodeID int

// Mask is a set of destination nodes for a multicast on the ordered network.
// It supports systems of up to 256 nodes, the largest configuration evaluated
// in the paper (Figure 8).
type Mask struct {
	w [4]uint64
}

// MaxNodes is the largest supported system size.
const MaxNodes = 256

// MaskOf returns a mask containing the given nodes.
func MaskOf(nodes ...NodeID) Mask {
	var m Mask
	for _, n := range nodes {
		m.Set(n)
	}
	return m
}

// FullMask returns a mask containing nodes [0, n).
func FullMask(n int) Mask {
	var m Mask
	for i := 0; i < n; i++ {
		m.Set(NodeID(i))
	}
	return m
}

// Set adds a node to the mask.
func (m *Mask) Set(n NodeID) {
	if n < 0 || n >= MaxNodes {
		panic(fmt.Sprintf("network: node %d out of range", n))
	}
	m.w[n>>6] |= 1 << (uint(n) & 63)
}

// Clear removes a node from the mask.
func (m *Mask) Clear(n NodeID) {
	if n < 0 || n >= MaxNodes {
		panic(fmt.Sprintf("network: node %d out of range", n))
	}
	m.w[n>>6] &^= 1 << (uint(n) & 63)
}

// Has reports whether the mask contains the node.
func (m Mask) Has(n NodeID) bool {
	if n < 0 || n >= MaxNodes {
		return false
	}
	return m.w[n>>6]&(1<<(uint(n)&63)) != 0
}

// Count returns the number of nodes in the mask.
func (m Mask) Count() int {
	c := 0
	for _, w := range m.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the mask contains no nodes.
func (m Mask) IsEmpty() bool {
	return m.w[0]|m.w[1]|m.w[2]|m.w[3] == 0
}

// Union returns the set union of two masks.
func (m Mask) Union(o Mask) Mask {
	var r Mask
	for i := range r.w {
		r.w[i] = m.w[i] | o.w[i]
	}
	return r
}

// SubsetOf reports whether every node in m is also in o.
func (m Mask) SubsetOf(o Mask) bool {
	for i := range m.w {
		if m.w[i]&^o.w[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two masks contain the same nodes.
func (m Mask) Equal(o Mask) bool { return m.w == o.w }

// ForEach calls fn for every node in the mask in ascending order.
func (m Mask) ForEach(fn func(NodeID)) {
	for wi, w := range m.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(NodeID(wi*64 + b))
			w &^= 1 << uint(b)
		}
	}
}

// String renders the mask as a compact node list, e.g. "{0,3,17}".
func (m Mask) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	m.ForEach(func(n NodeID) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%d", n)
	})
	sb.WriteByte('}')
	return sb.String()
}
