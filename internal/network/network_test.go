package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// recorder collects deliveries per node.
type recorder struct {
	ordered   []*Message
	unordered []*Message
	at        []sim.Time
	kernel    *sim.Kernel
}

func (r *recorder) DeliverOrdered(m *Message) {
	r.ordered = append(r.ordered, m)
	r.at = append(r.at, r.kernel.Now())
}
func (r *recorder) DeliverUnordered(m *Message) { r.unordered = append(r.unordered, m) }

func build(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *Network, []*recorder) {
	t.Helper()
	k := sim.NewKernel()
	cfg.Nodes = nodes
	if cfg.BandwidthMBs == 0 {
		cfg.BandwidthMBs = 1600
	}
	n := New(k, cfg)
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{kernel: k}
		n.SetHandler(NodeID(i), recs[i])
	}
	return k, n, recs
}

func TestUncontendedLatency(t *testing.T) {
	k, n, recs := build(t, 4, Config{BandwidthMBs: 100000})
	n.SendOrdered(0, n.FullMask(), 8, "x")
	k.Schedule(1000, func() { n.SendUnordered(1, 2, 72, "y") })
	k.Drain()
	for i, r := range recs {
		if len(r.ordered) != 1 {
			t.Fatalf("node %d got %d ordered deliveries", i, len(r.ordered))
		}
		if r.at[0] != 50 {
			t.Errorf("node %d delivery at %d, want 50 (cut-through)", i, r.at[0])
		}
	}
	if len(recs[2].unordered) != 1 {
		t.Fatal("unicast not delivered")
	}
}

func TestSerializationCreatesQueueing(t *testing.T) {
	// At 1600 MB/s an 8-byte message occupies a channel for 5 ns; ten
	// back-to-back broadcasts from one sender serialize on the out-channel.
	k, n, recs := build(t, 2, Config{BandwidthMBs: 1600})
	for i := 0; i < 10; i++ {
		n.SendOrdered(0, n.FullMask(), 8, i)
	}
	k.Drain()
	r := recs[1]
	if len(r.ordered) != 10 {
		t.Fatalf("got %d deliveries", len(r.ordered))
	}
	// First at ~50, last at ~50 + 9*5.
	if r.at[9]-r.at[0] < 40 {
		t.Errorf("no serialization spacing: first %d last %d", r.at[0], r.at[9])
	}
	if got := n.OutChannel(0).BusyNs(); got < 49 || got > 51 {
		t.Errorf("out-channel busy %v, want ~50", got)
	}
}

func TestTotalOrderUnderRandomLoad(t *testing.T) {
	k, n, recs := build(t, 8, Config{BandwidthMBs: 400})
	rng := sim.NewRNG(3)
	for i := 0; i < 500; i++ {
		src := NodeID(rng.Intn(8))
		delay := sim.Time(rng.Intn(2000))
		k.Schedule(delay, func() { n.SendOrdered(src, n.FullMask(), 8, nil) })
	}
	k.Drain()
	// Every node must observe the same sequence (the network asserts
	// monotonicity internally; here we check cross-node agreement).
	base := recs[0].ordered
	if len(base) != 500 {
		t.Fatalf("node 0 got %d deliveries", len(base))
	}
	for i, r := range recs[1:] {
		if len(r.ordered) != len(base) {
			t.Fatalf("node %d got %d deliveries", i+1, len(r.ordered))
		}
		for j := range base {
			if r.ordered[j].Seq != base[j].Seq {
				t.Fatalf("node %d delivery %d has seq %d, node 0 has %d",
					i+1, j, r.ordered[j].Seq, base[j].Seq)
			}
		}
	}
}

// TestTotalOrderWithJitter: jitter must neither violate the global total
// order nor reorder one sender's emissions.
func TestTotalOrderWithJitter(t *testing.T) {
	f := func(seed uint64) bool {
		k, n, recs := build(t, 5, Config{BandwidthMBs: 800, JitterNs: 137, JitterSeed: seed})
		rng := sim.NewRNG(seed)
		type sent struct {
			src NodeID
			id  int
		}
		var order []sent
		for i := 0; i < 200; i++ {
			src := NodeID(rng.Intn(5))
			id := i
			delay := sim.Time(rng.Intn(500))
			k.Schedule(delay, func() { n.SendOrdered(src, n.FullMask(), 8, sent{src, id}) })
			order = append(order, sent{src, id})
		}
		k.Drain()
		// Per-sender FIFO: for each sender, payload ids must arrive in
		// issue order at every node. Issue order per sender == schedule
		// time order, which we can't reconstruct here, so instead assert
		// cross-node agreement (the strong property) — per-sender FIFO is
		// covered by the directory protocol tests.
		base := recs[0].ordered
		for _, r := range recs[1:] {
			if len(r.ordered) != len(base) {
				return false
			}
			for j := range base {
				if r.ordered[j].Seq != base[j].Seq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPerSenderFIFOWithJitter: two messages sent back-to-back by the same
// sender must be sequenced in emission order even when the first draws a
// large jitter.
func TestPerSenderFIFOWithJitter(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		k, n, recs := build(t, 2, Config{BandwidthMBs: 100000, JitterNs: 200, JitterSeed: seed})
		for i := 0; i < 20; i++ {
			n.SendOrdered(0, n.FullMask(), 8, i)
		}
		k.Drain()
		for j, m := range recs[1].ordered {
			if m.Payload.(int) != j {
				t.Fatalf("seed %d: sender emissions reordered: pos %d has payload %v",
					seed, j, m.Payload)
			}
		}
	}
}

func TestBroadcastCostMultiplier(t *testing.T) {
	run := func(cost float64, full bool) float64 {
		k, n, _ := build(t, 4, Config{BandwidthMBs: 1600, BroadcastCost: cost})
		mask := n.FullMask()
		if !full {
			mask = MaskOf(0, 1)
		}
		n.SendOrdered(0, mask, 8, nil)
		k.Drain()
		return n.InChannel(1).BusyNs()
	}
	base := run(1, true)
	quad := run(4, true)
	if quad < 3.9*base || quad > 4.1*base {
		t.Errorf("4x broadcast occupancy = %v, base %v", quad, base)
	}
	// Multicasts (non-full masks) are not scaled.
	m1 := run(1, false)
	m4 := run(4, false)
	if m1 != m4 {
		t.Errorf("multicast occupancy scaled: %v vs %v", m1, m4)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k, n, _ := build(t, 2, Config{BandwidthMBs: 1600})
	// 20 unordered 72-byte messages into node 1: 45 ns each = 900 ns busy.
	for i := 0; i < 20; i++ {
		n.SendUnordered(0, 1, 72, nil)
	}
	k.Drain()
	busy := n.InChannel(1).BusyNs()
	if busy < 899 || busy > 901 {
		t.Errorf("in-channel busy = %v, want ~900", busy)
	}
	if got := n.InChannel(1).Messages(); got != 20 {
		t.Errorf("messages = %d", got)
	}
	u := n.InChannel(1).Utilization(1800)
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

func TestMaskOperations(t *testing.T) {
	m := MaskOf(0, 3, 200)
	if !m.Has(0) || !m.Has(3) || !m.Has(200) || m.Has(1) {
		t.Fatal("Has broken")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
	m.Clear(3)
	if m.Has(3) || m.Count() != 2 {
		t.Fatal("Clear broken")
	}
	full := FullMask(16)
	if !m2subset(MaskOf(1, 5), full) {
		t.Fatal("SubsetOf broken")
	}
	if m2subset(MaskOf(1, 17), FullMask(16)) {
		t.Fatal("SubsetOf false positive")
	}
	if got := MaskOf(2, 7).String(); got != "{2,7}" {
		t.Fatalf("String = %q", got)
	}
}

func m2subset(a, b Mask) bool { return a.SubsetOf(b) }

// TestMaskProperties: union/subset/count algebra via testing/quick.
func TestMaskProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Mask
		for _, x := range xs {
			a.Set(NodeID(x))
		}
		for _, y := range ys {
			b.Set(NodeID(y))
		}
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if u.Count() > a.Count()+b.Count() {
			return false
		}
		// ForEach visits exactly Count elements in ascending order.
		prev := NodeID(-1)
		n := 0
		u.ForEach(func(id NodeID) {
			if id <= prev {
				n = -1 << 20
			}
			prev = id
			n++
		})
		return n == u.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMaskSendPanics(t *testing.T) {
	k, n, _ := build(t, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Error("empty-mask ordered send did not panic")
		}
	}()
	n.SendOrdered(0, Mask{}, 8, nil)
	k.Drain()
}
