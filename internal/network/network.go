// Package network models the interconnect of the paper's target system: a
// fixed-latency crossbar with limited bandwidth and contention at the
// endpoints (Section 4.2). It provides two virtual networks sharing the
// physical endpoint links:
//
//   - a totally ordered multicast request network (used by Snooping requests,
//     Directory forwarded requests/markers, and all BASH requests), and
//   - an unordered point-to-point network (data responses, Directory
//     requests, acks and nacks).
//
// The total order is realized by a global sequencer: a message is assigned
// its sequence number at the instant it wins its sender's outbound channel,
// and all deliveries observe sequence order at every node. The network is
// asynchronous (deliveries at different nodes happen at different times), as
// the paper requires — only the order is common.
package network

import (
	"fmt"

	"repro/internal/sim"
)

// Message is a delivery handed to a node. Payload carries the
// protocol-level content; the network treats it as opaque.
type Message struct {
	From      NodeID
	Targets   Mask   // ordered-network deliveries only
	To        NodeID // unordered deliveries only
	Seq       uint64 // ordered-network sequence number (0 for unordered)
	Size      int    // bytes
	Broadcast bool   // true if sent to all nodes (cost multiplier applies)
	Payload   any
}

// Handler receives deliveries addressed to a node.
type Handler interface {
	// DeliverOrdered is invoked for each ordered-network message whose
	// target mask includes this node, in global sequence order.
	DeliverOrdered(m *Message)
	// DeliverUnordered is invoked for point-to-point messages.
	DeliverUnordered(m *Message)
}

// Config describes the interconnect.
type Config struct {
	Nodes int
	// BandwidthMBs is the endpoint link bandwidth per channel direction in
	// MB/s ("endpoint bandwidth available" on the paper's x-axes).
	BandwidthMBs float64
	// Traversal is the fixed network crossing latency (default 50 ns).
	Traversal sim.Time
	// BroadcastCost multiplies the link occupancy of broadcast requests
	// (1 for Figures 1–10, 4 for Figures 11–12). Zero means 1.
	BroadcastCost float64
	// JitterNs adds a uniform random 0..JitterNs delay to every message
	// traversal — the "widely variable message latencies" of the paper's
	// random tester (Section 3.4). Ordered messages are jittered before the
	// sequencer stamps them, so the total order is preserved.
	JitterNs int
	// JitterSeed seeds the jitter generator.
	JitterSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Traversal == 0 {
		c.Traversal = sim.NetworkTraversal
	}
	if c.BroadcastCost == 0 {
		c.BroadcastCost = 1
	}
	return c
}

// Network is the shared interconnect instance.
type Network struct {
	kernel   *sim.Kernel
	cfg      Config
	handlers []Handler
	out      []*Channel
	in       []*Channel
	seq      uint64
	full     Mask

	// lastSeqDelivered tracks, per node, the last ordered sequence number
	// delivered, to assert the total-order invariant.
	lastSeqDelivered []uint64

	// lastStamp enforces per-sender FIFO into the sequencer: messages leave
	// a node's out-port in order even under jitter. The directory protocol
	// relies on the ordered network preserving its emission order.
	lastStamp []sim.Time

	jitter *sim.RNG

	// OrderedSent counts ordered-network messages by broadcast/multicast.
	OrderedSent   uint64
	UnorderedSent uint64
}

// New builds the interconnect. Handlers must be registered with SetHandler
// before any traffic is sent.
func New(k *sim.Kernel, cfg Config) *Network {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 || cfg.Nodes > MaxNodes {
		panic(fmt.Sprintf("network: invalid node count %d", cfg.Nodes))
	}
	n := &Network{
		kernel:           k,
		cfg:              cfg,
		handlers:         make([]Handler, cfg.Nodes),
		out:              make([]*Channel, cfg.Nodes),
		in:               make([]*Channel, cfg.Nodes),
		full:             FullMask(cfg.Nodes),
		lastSeqDelivered: make([]uint64, cfg.Nodes),
		lastStamp:        make([]sim.Time, cfg.Nodes),
	}
	for i := range n.out {
		n.out[i] = NewChannel(cfg.BandwidthMBs)
		n.in[i] = NewChannel(cfg.BandwidthMBs)
	}
	if cfg.JitterNs > 0 {
		n.jitter = sim.NewRNG(cfg.JitterSeed ^ 0x6a09e667f3bcc908)
	}
	return n
}

// Reset returns the interconnect to its freshly constructed state for a new
// run: sequencer at zero, channels idle (with the new bandwidth), per-node
// order/FIFO tracking cleared, counters zeroed, and the jitter generator
// reseeded. The node count is structural and must match; handlers and the
// channel objects themselves are retained, so registered receivers and
// utilization samplers stay wired.
func (n *Network) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.Nodes != n.cfg.Nodes {
		panic(fmt.Sprintf("network: reset with %d nodes on a %d-node interconnect", cfg.Nodes, n.cfg.Nodes))
	}
	n.cfg = cfg
	n.seq = 0
	for i := range n.out {
		n.out[i].Reset(cfg.BandwidthMBs)
		n.in[i].Reset(cfg.BandwidthMBs)
		n.lastSeqDelivered[i] = 0
		n.lastStamp[i] = 0
	}
	if cfg.JitterNs > 0 {
		seed := cfg.JitterSeed ^ 0x6a09e667f3bcc908
		if n.jitter == nil {
			n.jitter = sim.NewRNG(seed)
		} else {
			n.jitter.Reseed(seed)
		}
	} else {
		n.jitter = nil
	}
	n.OrderedSent = 0
	n.UnorderedSent = 0
}

// jitterDelay samples one message's extra traversal delay.
func (n *Network) jitterDelay() sim.Time {
	if n.jitter == nil {
		return 0
	}
	return sim.Time(n.jitter.Intn(n.cfg.JitterNs + 1))
}

// SetHandler registers the receiver for a node.
func (n *Network) SetHandler(id NodeID, h Handler) { n.handlers[id] = h }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// FullMask returns the mask of all nodes.
func (n *Network) FullMask() Mask { return n.full }

// InChannel returns the inbound channel of a node (for utilization sampling).
func (n *Network) InChannel(id NodeID) *Channel { return n.in[id] }

// OutChannel returns the outbound channel of a node.
func (n *Network) OutChannel(id NodeID) *Channel { return n.out[id] }

// SendOrdered transmits a message on the totally ordered multicast network.
// The message is delivered to every node in targets (including the sender if
// present — the returning copy is the protocol's ordering marker). The
// sequence number is assigned when the message wins the sender's outbound
// channel and is visible to the payload via the delivered Message.
func (n *Network) SendOrdered(from NodeID, targets Mask, size int, payload any) {
	if targets.IsEmpty() {
		panic("network: ordered send with empty target mask")
	}
	n.OrderedSent++
	bcast := targets.Equal(n.full)
	cost := 1.0
	if bcast {
		cost = n.cfg.BroadcastCost
	}
	start := n.out[from].Seize(n.kernel.Now(), size, cost) + n.jitterDelay()
	if start < n.lastStamp[from] {
		start = n.lastStamp[from]
	}
	n.lastStamp[from] = start
	// The sequencer stamps the message when it passes the root of the
	// ordered interconnect; deliveries fan out from there. Jitter is applied
	// before sequencing (and clamped to per-sender FIFO order) so the total
	// order is never violated and sender emission order is preserved.
	n.kernel.At(start, func() {
		n.seq++
		m := &Message{
			From:      from,
			Targets:   targets,
			Seq:       n.seq,
			Size:      size,
			Broadcast: bcast,
			Payload:   payload,
		}
		arrive := n.kernel.Now() + n.cfg.Traversal
		targets.ForEach(func(dst NodeID) {
			n.kernel.At(arrive, func() { n.deliverOrdered(dst, m, cost) })
		})
	})
}

// SendUnordered transmits a point-to-point message (data, ack, nack, or a
// Directory-protocol request) with no ordering guarantee.
func (n *Network) SendUnordered(from, to NodeID, size int, payload any) {
	n.UnorderedSent++
	start := n.out[from].Seize(n.kernel.Now(), size, 1)
	n.kernel.At(start+n.cfg.Traversal+n.jitterDelay(), func() {
		grant := n.in[to].Seize(n.kernel.Now(), size, 1)
		m := &Message{From: from, To: to, Size: size, Payload: payload}
		n.kernel.At(grant, func() { n.handlers[to].DeliverUnordered(m) })
	})
}

func (n *Network) deliverOrdered(dst NodeID, m *Message, cost float64) {
	grant := n.in[dst].Seize(n.kernel.Now(), m.Size, cost)
	n.kernel.At(grant, func() {
		if last := n.lastSeqDelivered[dst]; m.Seq <= last {
			panic(fmt.Sprintf("network: total order violated at node %d: seq %d after %d", dst, m.Seq, last))
		}
		n.lastSeqDelivered[dst] = m.Seq
		n.handlers[dst].DeliverOrdered(m)
	})
}

// AvgUtilization returns the mean inbound-channel utilization across nodes
// over the elapsed time (the quantity plotted in Figure 6).
func (n *Network) AvgUtilization(elapsed sim.Time) float64 {
	var sum float64
	for _, c := range n.in {
		sum += c.Utilization(elapsed)
	}
	return sum / float64(len(n.in))
}

// TotalBytes returns the bytes carried by all endpoint channels.
func (n *Network) TotalBytes() uint64 {
	var total uint64
	for i := range n.in {
		total += n.in[i].Bytes() + n.out[i].Bytes()
	}
	return total
}
