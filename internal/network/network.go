// Package network models the interconnect of the paper's target system: a
// fixed-latency crossbar with limited bandwidth and contention at the
// endpoints (Section 4.2). It provides two virtual networks sharing the
// physical endpoint links:
//
//   - a totally ordered multicast request network (used by Snooping requests,
//     Directory forwarded requests/markers, and all BASH requests), and
//   - an unordered point-to-point network (data responses, Directory
//     requests, acks and nacks).
//
// The total order is realized by a global sequencer: a message is assigned
// its sequence number at the instant it wins its sender's outbound channel,
// and all deliveries observe sequence order at every node. The network is
// asynchronous (deliveries at different nodes happen at different times), as
// the paper requires — only the order is common.
package network

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Message is a delivery handed to a node. Payload carries the
// protocol-level content; the network treats it as opaque.
//
// With Config.Recycle enabled the network reclaims the Message as soon as
// its last delivery handler returns: handlers must not hold a *Message (or
// read it) after DeliverOrdered/DeliverUnordered returns. Payload lifetime
// is the payload owner's concern (see coherence.Recycler).
type Message struct {
	From      NodeID
	Targets   Mask   // ordered-network deliveries only
	To        NodeID // unordered deliveries only
	Seq       uint64 // ordered-network sequence number (0 for unordered)
	Size      int    // bytes
	Broadcast bool   // true if sent to all nodes (cost multiplier applies)
	Payload   any

	// remaining counts undelivered copies; the network recycles the Message
	// when it reaches zero (Config.Recycle only).
	remaining int32
}

// Handler receives deliveries addressed to a node.
type Handler interface {
	// DeliverOrdered is invoked for each ordered-network message whose
	// target mask includes this node, in global sequence order.
	DeliverOrdered(m *Message)
	// DeliverUnordered is invoked for point-to-point messages.
	DeliverUnordered(m *Message)
}

// Config describes the interconnect.
type Config struct {
	Nodes int
	// BandwidthMBs is the endpoint link bandwidth per channel direction in
	// MB/s ("endpoint bandwidth available" on the paper's x-axes).
	BandwidthMBs float64
	// Traversal is the fixed network crossing latency (default 50 ns).
	Traversal sim.Time
	// BroadcastCost multiplies the link occupancy of broadcast requests
	// (1 for Figures 1–10, 4 for Figures 11–12). Zero means 1.
	BroadcastCost float64
	// JitterNs adds a uniform random 0..JitterNs delay to every message
	// traversal — the "widely variable message latencies" of the paper's
	// random tester (Section 3.4). Ordered messages are jittered before the
	// sequencer stamps them, so the total order is preserved.
	JitterNs int
	// JitterSeed seeds the jitter generator.
	JitterSeed uint64
	// Recycle lets the network reclaim Message records after their last
	// delivery handler returns, eliminating the per-delivery allocation in
	// steady state. Handlers must then not retain a *Message beyond the
	// Deliver* call. Delivery timing and ordering are identical either way.
	Recycle bool
}

func (c Config) withDefaults() Config {
	if c.Traversal == 0 {
		c.Traversal = sim.NetworkTraversal
	}
	if c.BroadcastCost == 0 {
		c.BroadcastCost = 1
	}
	return c
}

// Network is the shared interconnect instance.
type Network struct {
	kernel   *sim.Kernel
	cfg      Config
	handlers []Handler
	out      []*Channel
	in       []*Channel
	seq      uint64
	full     Mask

	// lastSeqDelivered tracks, per node, the last ordered sequence number
	// delivered, to assert the total-order invariant.
	lastSeqDelivered []uint64

	// lastStamp enforces per-sender FIFO into the sequencer: messages leave
	// a node's out-port in order even under jitter. The directory protocol
	// relies on the ordered network preserving its emission order.
	lastStamp []sim.Time

	jitter *sim.RNG

	// msgFree and taskFree recycle Message records and internal scheduling
	// tasks. Tasks are purely network-internal and always recycled; Messages
	// are recycled only under Config.Recycle (handlers might retain them
	// otherwise). Reset drains nothing: the warmed free lists are the point.
	msgFree  []*Message
	taskFree []*netTask

	// OrderedSent counts ordered-network messages by broadcast/multicast.
	OrderedSent   uint64
	UnorderedSent uint64
}

// netTask is the one free-listed scheduling unit behind every network event:
// sequencer stamping, fan-out arrival, channel-grant handoff, and delayed
// sends. A single struct with a kind tag keeps the free list monomorphic.
type netTask struct {
	n       *Network
	kind    uint8
	from    NodeID
	dst     NodeID
	targets Mask
	size    int
	cost    float64
	delay   sim.Time
	m       *Message
	payload any
}

// netTask kinds.
const (
	taskStamp      uint8 = iota // ordered: assign seq, fan deliveries out
	taskOrdArrive               // ordered: seize the inbound channel
	taskOrdHandoff              // ordered: hand the message to the node
	taskUnArrive                // unordered: seize the inbound channel
	taskUnHandoff               // unordered: hand the message to the node
	taskSendOrd                 // delayed SendOrdered
	taskSendUn                  // delayed SendUnordered
)

func (n *Network) getTask() *netTask {
	if len(n.taskFree) == 0 {
		return &netTask{n: n}
	}
	t := n.taskFree[len(n.taskFree)-1]
	n.taskFree = n.taskFree[:len(n.taskFree)-1]
	return t
}

func (n *Network) putTask(t *netTask) {
	net := t.n
	*t = netTask{n: net}
	net.taskFree = append(net.taskFree, t)
}

func (n *Network) getMessage() *Message {
	if len(n.msgFree) == 0 || !n.cfg.Recycle {
		return &Message{}
	}
	m := n.msgFree[len(n.msgFree)-1]
	n.msgFree = n.msgFree[:len(n.msgFree)-1]
	return m
}

// releaseMessage counts down one delivery and reclaims the Message when the
// last handler has returned (Config.Recycle only).
func (n *Network) releaseMessage(m *Message) {
	m.remaining--
	if m.remaining > 0 || !n.cfg.Recycle {
		return
	}
	*m = Message{}
	n.msgFree = append(n.msgFree, m)
}

// Run dispatches one network task. Tasks recycle themselves after copying
// the fields they need, so a task fired from the kernel can immediately be
// reused by whatever it schedules next.
func (t *netTask) Run() {
	n := t.n
	switch t.kind {
	case taskStamp:
		from, targets, size, cost, payload := t.from, t.targets, t.size, t.cost, t.payload
		n.putTask(t)
		n.stampAndFanOut(from, targets, size, cost, payload)
	case taskOrdArrive:
		dst, m, cost := t.dst, t.m, t.cost
		n.putTask(t)
		grant := n.in[dst].Seize(n.kernel.Now(), m.Size, cost)
		h := n.getTask()
		h.kind, h.dst, h.m = taskOrdHandoff, dst, m
		n.kernel.AtTask(grant, h)
	case taskOrdHandoff:
		dst, m := t.dst, t.m
		n.putTask(t)
		if last := n.lastSeqDelivered[dst]; m.Seq <= last {
			panic(fmt.Sprintf("network: total order violated at node %d: seq %d after %d", dst, m.Seq, last))
		}
		n.lastSeqDelivered[dst] = m.Seq
		n.handlers[dst].DeliverOrdered(m)
		n.releaseMessage(m)
	case taskUnArrive:
		dst, m := t.dst, t.m
		n.putTask(t)
		grant := n.in[dst].Seize(n.kernel.Now(), m.Size, 1)
		h := n.getTask()
		h.kind, h.dst, h.m = taskUnHandoff, dst, m
		n.kernel.AtTask(grant, h)
	case taskUnHandoff:
		dst, m := t.dst, t.m
		n.putTask(t)
		n.handlers[dst].DeliverUnordered(m)
		n.releaseMessage(m)
	case taskSendOrd:
		from, targets, size, payload := t.from, t.targets, t.size, t.payload
		n.putTask(t)
		n.SendOrdered(from, targets, size, payload)
	case taskSendUn:
		from, dst, size, payload := t.from, t.dst, t.size, t.payload
		n.putTask(t)
		n.SendUnordered(from, dst, size, payload)
	default:
		panic(fmt.Sprintf("network: unknown task kind %d", t.kind))
	}
}

// New builds the interconnect. Handlers must be registered with SetHandler
// before any traffic is sent.
func New(k *sim.Kernel, cfg Config) *Network {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 || cfg.Nodes > MaxNodes {
		panic(fmt.Sprintf("network: invalid node count %d", cfg.Nodes))
	}
	n := &Network{
		kernel:           k,
		cfg:              cfg,
		handlers:         make([]Handler, cfg.Nodes),
		out:              make([]*Channel, cfg.Nodes),
		in:               make([]*Channel, cfg.Nodes),
		full:             FullMask(cfg.Nodes),
		lastSeqDelivered: make([]uint64, cfg.Nodes),
		lastStamp:        make([]sim.Time, cfg.Nodes),
	}
	for i := range n.out {
		n.out[i] = NewChannel(cfg.BandwidthMBs)
		n.in[i] = NewChannel(cfg.BandwidthMBs)
	}
	if cfg.JitterNs > 0 {
		n.jitter = sim.NewRNG(cfg.JitterSeed ^ 0x6a09e667f3bcc908)
	}
	return n
}

// Reset returns the interconnect to its freshly constructed state for a new
// run: sequencer at zero, channels idle (with the new bandwidth), per-node
// order/FIFO tracking cleared, counters zeroed, and the jitter generator
// reseeded. The node count is structural and must match; handlers and the
// channel objects themselves are retained, so registered receivers and
// utilization samplers stay wired.
func (n *Network) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.Nodes != n.cfg.Nodes {
		panic(fmt.Sprintf("network: reset with %d nodes on a %d-node interconnect", cfg.Nodes, n.cfg.Nodes))
	}
	n.cfg = cfg
	n.seq = 0
	for i := range n.out {
		n.out[i].Reset(cfg.BandwidthMBs)
		n.in[i].Reset(cfg.BandwidthMBs)
		n.lastSeqDelivered[i] = 0
		n.lastStamp[i] = 0
	}
	if cfg.JitterNs > 0 {
		seed := cfg.JitterSeed ^ 0x6a09e667f3bcc908
		if n.jitter == nil {
			n.jitter = sim.NewRNG(seed)
		} else {
			n.jitter.Reseed(seed)
		}
	} else {
		n.jitter = nil
	}
	n.OrderedSent = 0
	n.UnorderedSent = 0
}

// jitterDelay samples one message's extra traversal delay.
func (n *Network) jitterDelay() sim.Time {
	if n.jitter == nil {
		return 0
	}
	return sim.Time(n.jitter.Intn(n.cfg.JitterNs + 1))
}

// SetHandler registers the receiver for a node.
func (n *Network) SetHandler(id NodeID, h Handler) { n.handlers[id] = h }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// FullMask returns the mask of all nodes.
func (n *Network) FullMask() Mask { return n.full }

// InChannel returns the inbound channel of a node (for utilization sampling).
func (n *Network) InChannel(id NodeID) *Channel { return n.in[id] }

// OutChannel returns the outbound channel of a node.
func (n *Network) OutChannel(id NodeID) *Channel { return n.out[id] }

// SendOrdered transmits a message on the totally ordered multicast network.
// The message is delivered to every node in targets (including the sender if
// present — the returning copy is the protocol's ordering marker). The
// sequence number is assigned when the message wins the sender's outbound
// channel and is visible to the payload via the delivered Message.
func (n *Network) SendOrdered(from NodeID, targets Mask, size int, payload any) {
	if targets.IsEmpty() {
		panic("network: ordered send with empty target mask")
	}
	n.OrderedSent++
	cost := 1.0
	if targets.Equal(n.full) {
		cost = n.cfg.BroadcastCost
	}
	start := n.out[from].Seize(n.kernel.Now(), size, cost) + n.jitterDelay()
	if start < n.lastStamp[from] {
		start = n.lastStamp[from]
	}
	n.lastStamp[from] = start
	// The sequencer stamps the message when it passes the root of the
	// ordered interconnect; deliveries fan out from there. Jitter is applied
	// before sequencing (and clamped to per-sender FIFO order) so the total
	// order is never violated and sender emission order is preserved.
	st := n.getTask()
	st.kind, st.from, st.targets, st.size, st.cost, st.payload = taskStamp, from, targets, size, cost, payload
	n.kernel.AtTask(start, st)
}

// stampAndFanOut assigns the global sequence number and schedules one
// arrival per target.
func (n *Network) stampAndFanOut(from NodeID, targets Mask, size int, cost float64, payload any) {
	n.seq++
	m := n.getMessage()
	m.From = from
	m.Targets = targets
	m.Seq = n.seq
	m.Size = size
	m.Broadcast = targets.Equal(n.full)
	m.Payload = payload
	m.remaining = int32(targets.Count())
	arrive := n.kernel.Now() + n.cfg.Traversal
	for wi, w := range targets.w {
		for w != 0 {
			dst := NodeID(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			a := n.getTask()
			a.kind, a.dst, a.m, a.cost = taskOrdArrive, dst, m, cost
			n.kernel.AtTask(arrive, a)
		}
	}
}

// SendOrderedDelayed is SendOrdered after delay simulated nanoseconds: the
// outbound channel is seized (and jitter drawn) when the delay elapses,
// exactly as if the caller had scheduled the send with a closure — minus the
// closure.
func (n *Network) SendOrderedDelayed(delay sim.Time, from NodeID, targets Mask, size int, payload any) {
	t := n.getTask()
	t.kind, t.from, t.targets, t.size, t.payload = taskSendOrd, from, targets, size, payload
	n.kernel.ScheduleTask(delay, t)
}

// SendUnordered transmits a point-to-point message (data, ack, nack, or a
// Directory-protocol request) with no ordering guarantee.
func (n *Network) SendUnordered(from, to NodeID, size int, payload any) {
	n.UnorderedSent++
	start := n.out[from].Seize(n.kernel.Now(), size, 1)
	m := n.getMessage()
	m.From = from
	m.To = to
	m.Size = size
	m.Payload = payload
	m.remaining = 1
	a := n.getTask()
	a.kind, a.dst, a.m = taskUnArrive, to, m
	n.kernel.AtTask(start+n.cfg.Traversal+n.jitterDelay(), a)
}

// SendUnorderedDelayed is SendUnordered after delay simulated nanoseconds.
func (n *Network) SendUnorderedDelayed(delay sim.Time, from, to NodeID, size int, payload any) {
	t := n.getTask()
	t.kind, t.from, t.dst, t.size, t.payload = taskSendUn, from, to, size, payload
	n.kernel.ScheduleTask(delay, t)
}

// AvgUtilization returns the mean inbound-channel utilization across nodes
// over the elapsed time (the quantity plotted in Figure 6).
func (n *Network) AvgUtilization(elapsed sim.Time) float64 {
	var sum float64
	for _, c := range n.in {
		sum += c.Utilization(elapsed)
	}
	return sum / float64(len(n.in))
}

// TotalBytes returns the bytes carried by all endpoint channels.
func (n *Network) TotalBytes() uint64 {
	var total uint64
	for i := range n.in {
		total += n.in[i].Bytes() + n.out[i].Bytes()
	}
	return total
}
