package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAnalyticLimits(t *testing.T) {
	// Huge think time: server nearly idle, negligible delay.
	r := Analytic(16, 1000)
	if r.Utilization > 0.05 || r.QueueDelay > 0.1 {
		t.Fatalf("idle limit wrong: %+v", r)
	}
	// Zero think time: fully saturated, delay = N-1 service times.
	r = Analytic(16, 0)
	if r.Utilization != 1 || math.Abs(r.QueueDelay-15) > 1e-9 {
		t.Fatalf("saturated limit wrong: %+v", r)
	}
}

func TestAnalyticKnee(t *testing.T) {
	// The figure's motivation: delay at ~95% utilization dwarfs delay at
	// ~50%.
	var at50, at95 float64
	for _, r := range Sweep(16, 200) {
		if at50 == 0 && r.Utilization >= 0.5 {
			at50 = r.QueueDelay
		}
		if at95 == 0 && r.Utilization >= 0.95 {
			at95 = r.QueueDelay
		}
	}
	if at50 <= 0 || at95 <= 0 {
		t.Fatal("sweep did not cover 50% and 95% utilization")
	}
	if at95 < 5*at50 {
		t.Fatalf("no knee: delay(95%%)=%v vs delay(50%%)=%v", at95, at50)
	}
}

// TestAnalyticMonotone: lower think time means higher utilization and
// higher queueing delay.
func TestAnalyticMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		za, zb := float64(a%2000)/10+0.1, float64(b%2000)/10+0.1
		if za > zb {
			za, zb = zb, za
		}
		ra, rb := Analytic(16, za), Analytic(16, zb)
		return ra.Utilization >= rb.Utilization-1e-12 && ra.QueueDelay >= rb.QueueDelay-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLittlesLaw(t *testing.T) {
	// N = X * (Z + R) must hold exactly in the analytic solution.
	for _, z := range []float64{0.5, 2, 8, 32, 128} {
		r := Analytic(16, z)
		n := r.Throughput * (z + r.QueueDelay + 1)
		if math.Abs(n-16) > 1e-9 {
			t.Fatalf("Little's law violated at z=%v: N=%v", z, n)
		}
	}
}

func TestSimulationMatchesAnalytic(t *testing.T) {
	for _, z := range []float64{2, 8, 30, 100} {
		a := Analytic(16, z)
		s := Simulate(16, z, 60000, 11)
		if math.Abs(s.Utilization-a.Utilization) > 0.03 {
			t.Errorf("z=%v: utilization sim %.3f vs analytic %.3f", z, s.Utilization, a.Utilization)
		}
		tol := 0.15*a.QueueDelay + 0.1
		if math.Abs(s.QueueDelay-a.QueueDelay) > tol {
			t.Errorf("z=%v: delay sim %.3f vs analytic %.3f", z, s.QueueDelay, a.QueueDelay)
		}
	}
}

func TestSweepCoversUtilizationRange(t *testing.T) {
	rs := Sweep(16, 24)
	if rs[0].Utilization > 0.2 {
		t.Fatalf("sweep starts at %.2f utilization", rs[0].Utilization)
	}
	if rs[len(rs)-1].Utilization < 0.95 {
		t.Fatalf("sweep ends at %.2f utilization", rs[len(rs)-1].Utilization)
	}
}
