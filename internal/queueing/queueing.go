// Package queueing reproduces Figure 2 of the paper: the average queueing
// delay versus utilization of a simple closed queueing network (machine
// repairman model) with N = 16 customers, exponential service S ~ exp(1),
// and exponential think time Z whose mean is varied to sweep utilization.
// The "knee" of this curve motivates BASH's 75% utilization target.
//
// Both an exact analytic solution and a discrete-event simulation are
// provided; tests cross-validate them.
package queueing

import (
	"math"

	"repro/internal/sim"
)

// Result is one point of the delay/utilization curve.
type Result struct {
	MeanThink   float64 // E[Z] in service-time units
	Utilization float64 // server utilization (fraction busy)
	QueueDelay  float64 // mean wait before service, in service-time units
	Throughput  float64 // completions per service time
}

// Analytic solves the M/M/1//N machine-repairman model exactly.
//
// With service rate 1 (E[S]=1) and think rate 1/z, the stationary
// probability of n customers at the server is
//
//	p_n = p_0 * N!/(N-n)! * (1/z)^n
//
// Utilization is 1-p_0; throughput X = 1-p_0; by Little's law the response
// time at the server is R = N/X - z and the queueing delay is R - 1.
func Analytic(n int, meanThink float64) Result {
	if n <= 0 || meanThink < 0 {
		panic("queueing: invalid parameters")
	}
	// Compute p_0 with the stable backward recursion on term ratios.
	// term_n / term_{n-1} = (N-n+1)/z.
	sum := 1.0
	term := 1.0
	for i := 1; i <= n; i++ {
		term *= float64(n-i+1) / meanThink
		sum += term
		if math.IsInf(sum, 1) {
			break
		}
	}
	p0 := 1.0 / sum
	if meanThink == 0 {
		p0 = 0
	}
	x := 1 - p0
	r := float64(n)/x - meanThink
	return Result{
		MeanThink:   meanThink,
		Utilization: x,
		QueueDelay:  r - 1,
		Throughput:  x,
	}
}

// Simulate runs the same closed network by discrete-event simulation for the
// given number of service completions (time unit = 1000 simulated ns per
// service time to limit rounding error).
func Simulate(n int, meanThink float64, completions int, seed uint64) Result {
	const unit = 1000.0 // ns per service time
	k := sim.NewKernel()
	rng := sim.NewRNG(seed)

	var (
		queue     int
		busy      bool
		busyStart sim.Time
		busyTotal sim.Time
		done      int
		waitSum   float64
		arrivals  []sim.Time
	)

	var completeService func()
	var finishThink func()

	beginService := func() {
		busy = true
		busyStart = k.Now()
		waitSum += float64(k.Now() - arrivals[0])
		arrivals = arrivals[1:]
		k.Schedule(rng.ExpTime(unit)+1, completeService)
	}

	completeService = func() {
		// Service completes: the customer goes back to thinking.
		busy = false
		busyTotal += k.Now() - busyStart
		done++
		queue--
		think := rng.ExpTime(meanThink*unit) + 1
		k.Schedule(think, finishThink)
		if queue > 0 {
			beginService()
		}
	}

	finishThink = func() {
		queue++
		arrivals = append(arrivals, k.Now())
		if !busy {
			beginService()
		}
	}

	for i := 0; i < n; i++ {
		k.Schedule(rng.ExpTime(meanThink*unit)+1, finishThink)
	}
	k.RunUntil(func() bool { return done >= completions })

	elapsed := float64(k.Now())
	util := float64(busyTotal) / elapsed
	return Result{
		MeanThink:   meanThink,
		Utilization: util,
		QueueDelay:  waitSum / float64(done) / unit,
		Throughput:  float64(done) / elapsed * unit,
	}
}

// Sweep evaluates the analytic model over a range of think times chosen to
// cover utilizations from near 0 to near 1 (the x-axis of Figure 2).
func Sweep(n int, points int) []Result {
	if points < 2 {
		points = 2
	}
	out := make([]Result, 0, points)
	// Think times from very large (idle server) to very small (saturated).
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		// Logarithmic sweep: z from ~200 down to ~0.2 service times.
		z := 200 * math.Pow(0.001, frac)
		out = append(out, Analytic(n, z))
	}
	return out
}
